(* Unit and property tests for pstm_graph. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- Value --- *)

let value_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n = 0 then
          oneof
            [
              return Value.Null;
              map (fun b -> Value.Bool b) bool;
              map (fun i -> Value.Int i) small_int;
              map (fun f -> Value.Float (float_of_int f)) small_int;
              map (fun s -> Value.Str s) (string_size (int_range 0 6));
              map (fun v -> Value.Vertex v) small_nat;
            ]
        else map (fun l -> Value.List l) (list_size (int_range 0 3) (self (n / 4)))))

let arb_value = QCheck.make ~print:Value.to_string value_gen

let value_compare_reflexive =
  QCheck.Test.make ~name:"value compare reflexive" ~count:300 arb_value (fun v ->
      Value.compare v v = 0)

let value_compare_antisymmetric =
  QCheck.Test.make ~name:"value compare antisymmetric" ~count:300
    (QCheck.pair arb_value arb_value)
    (fun (a, b) -> Int.compare (Value.compare a b) 0 = -Int.compare (Value.compare b a) 0)

let value_compare_transitive =
  QCheck.Test.make ~name:"value compare transitive" ~count:300
    (QCheck.triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
      let le x y = Value.compare x y <= 0 in
      not (le a b && le b c) || le a c)

let value_equal_hash =
  QCheck.Test.make ~name:"equal values hash equally" ~count:300 arb_value (fun v ->
      Value.hash v = Value.hash v && Value.equal v v)

let test_value_numeric_compare () =
  Alcotest.(check int) "int vs float" 0 (Value.compare (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "1 < 1.5" true (Value.compare (Value.Int 1) (Value.Float 1.5) < 0)

let test_value_add () =
  Alcotest.(check bool) "int add" true (Value.equal (Value.Int 5) (Value.add (Value.Int 2) (Value.Int 3)));
  Alcotest.(check bool) "null identity" true
    (Value.equal (Value.Int 7) (Value.add Value.Null (Value.Int 7)));
  (match Value.add (Value.Int 1) (Value.Float 0.5) with
  | Value.Float f -> Alcotest.(check (float 0.0001)) "promotes" 1.5 f
  | _ -> Alcotest.fail "expected float")

let value_bytes_positive =
  QCheck.Test.make ~name:"value bytes positive" ~count:300 arb_value (fun v -> Value.bytes v > 0)

(* --- Schema --- *)

let test_schema_interning () =
  let s = Schema.create () in
  let a = Schema.vertex_label s "Person" in
  let b = Schema.vertex_label s "Post" in
  Alcotest.(check int) "stable" a (Schema.vertex_label s "Person");
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check string) "name round-trip" "Post" (Schema.vertex_label_name s b);
  Alcotest.(check (option int)) "find_opt known" (Some a) (Schema.vertex_label_opt s "Person");
  Alcotest.(check (option int)) "find_opt unknown" None (Schema.vertex_label_opt s "Nope");
  Alcotest.(check int) "count" 2 (Schema.vertex_label_count s);
  (* Separate namespaces. *)
  let e = Schema.edge_label s "Person" in
  Alcotest.(check bool) "namespaces independent" true (e = 0)

(* --- Csr --- *)

let test_csr_build_and_scan () =
  let csr =
    Csr.build ~n_vertices:4
      ~sources:[| 0; 0; 1; 3; 3; 3 |]
      ~targets:[| 1; 2; 2; 0; 1; 2 |]
      ~labels:[| 0; 1; 0; 0; 0; 1 |]
      ~edge_ids:[| 0; 1; 2; 3; 4; 5 |]
  in
  Alcotest.(check int) "degree 0" 2 (Csr.degree csr 0);
  Alcotest.(check int) "degree 2" 0 (Csr.degree csr 2);
  Alcotest.(check int) "degree 3" 3 (Csr.degree csr 3);
  Alcotest.(check (array int)) "neighbors of 3" [| 0; 1; 2 |] (Csr.neighbors csr 3);
  Alcotest.(check (array int)) "label-filtered" [| 2 |] (Csr.neighbors csr ~label:1 3);
  Alcotest.(check int) "label degree" 1 (Csr.degree_with_label csr 1 0);
  (* Edge ids travel with positions. *)
  let ids = ref [] in
  Csr.iter_neighbors csr 3 (fun ~target:_ ~edge_id ~label:_ -> ids := edge_id :: !ids);
  Alcotest.(check (list int)) "edge ids" [ 5; 4; 3 ] !ids

(* --- Props --- *)

let test_props_typed_columns () =
  let sparse = Hashtbl.create 4 in
  let ints = Vec.create ~dummy:(0, Value.Null) in
  Vec.push ints (0, Value.Int 10);
  Vec.push ints (2, Value.Int 30);
  Hashtbl.add sparse 0 ints;
  let mixed = Vec.create ~dummy:(0, Value.Null) in
  Vec.push mixed (1, Value.Str "x");
  Vec.push mixed (2, Value.Int 5);
  Hashtbl.add sparse 1 mixed;
  let p = Props.of_sparse ~size:3 sparse in
  Alcotest.(check bool) "int col" true (Value.equal (Value.Int 10) (Props.get p ~key:0 0));
  Alcotest.(check bool) "missing is null" true (Value.is_null (Props.get p ~key:0 1));
  Alcotest.(check (option int)) "fast int path" (Some 30) (Props.get_int p ~key:0 2);
  Alcotest.(check bool) "mixed col str" true (Value.equal (Value.Str "x") (Props.get p ~key:1 1));
  Alcotest.(check bool) "mixed col int" true (Value.equal (Value.Int 5) (Props.get p ~key:1 2));
  Alcotest.(check bool) "unknown key is null" true (Value.is_null (Props.get p ~key:9 0))

(* --- Partition --- *)

let partition_covers =
  QCheck.Test.make ~name:"partitions tile the vertex set" ~count:60
    QCheck.(pair (int_range 1 16) (int_range 0 300))
    (fun (n_parts, n_vertices) ->
      List.for_all
        (fun strategy ->
          let p = Partition.create ~strategy ~n_parts ~n_vertices () in
          let seen = Array.make (max 1 n_vertices) 0 in
          for part = 0 to n_parts - 1 do
            Array.iter
              (fun v ->
                seen.(v) <- seen.(v) + 1;
                if Partition.owner p v <> part then failwith "owner disagrees with members")
              (Partition.members p part)
          done;
          n_vertices = 0 || Array.for_all (Int.equal 1) seen)
        [ Partition.Hash; Partition.Mod; Partition.Block; Partition.Adaptive ])

let test_partition_imbalance () =
  let p = Partition.create ~n_parts:4 ~n_vertices:1000 () in
  Alcotest.(check bool) "near balanced" true (Partition.imbalance p < 1.2)

let test_partition_imbalance_boundaries () =
  let imb ?strategy ~n_parts ~n_vertices () =
    Partition.imbalance (Partition.create ?strategy ~n_parts ~n_vertices ())
  in
  Alcotest.(check (float 0.0)) "single partition" 1.0 (imb ~n_parts:1 ~n_vertices:100 ());
  Alcotest.(check (float 0.0)) "one vertex each" 1.0
    (imb ~strategy:Partition.Mod ~n_parts:7 ~n_vertices:7 ());
  Alcotest.(check (float 0.0)) "empty graph" 1.0 (imb ~n_parts:4 ~n_vertices:0 ());
  Alcotest.(check (float 0.0)) "more parts than vertices" 1.0
    (imb ~n_parts:10 ~n_vertices:3 ())

let test_partition_adaptive () =
  let p = Partition.create ~strategy:Partition.Adaptive ~n_parts:4 ~n_vertices:16 () in
  let hash = Partition.create ~strategy:Partition.Hash ~n_parts:4 ~n_vertices:16 () in
  (* Adaptive starts from the hash placement... *)
  for v = 0 to 15 do
    Alcotest.(check int) "starts at hash" (Partition.owner hash v) (Partition.owner p v)
  done;
  (* ...and set_owner rewrites the table, visible through owner, members
     and to_assignment. *)
  let dst = (Partition.owner p 5 + 1) mod 4 in
  Partition.set_owner p 5 dst;
  Alcotest.(check int) "owner rewritten" dst (Partition.owner p 5);
  Alcotest.(check bool) "member of new partition" true
    (Array.mem 5 (Partition.members p dst));
  Alcotest.(check int) "snapshot agrees" dst (Partition.to_assignment p).(5);
  (* Seeding from an explicit table is honored (and copied). *)
  let assignment = Array.init 16 (fun v -> v mod 4) in
  let seeded =
    Partition.create ~strategy:Partition.Adaptive ~assignment ~n_parts:4 ~n_vertices:16 ()
  in
  assignment.(0) <- 3;
  Alcotest.(check int) "seeded table copied" 0 (Partition.owner seeded 0);
  Alcotest.(check bool) "set_owner on static is an error" true
    (match Partition.set_owner hash 5 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Builder / Graph --- *)

let small_graph () =
  let b = Builder.create () in
  let v0 = Builder.add_vertex b ~label:"A" ~props:[ ("id", Value.Int 0) ] () in
  let v1 = Builder.add_vertex b ~label:"A" ~props:[ ("id", Value.Int 1) ] () in
  let v2 = Builder.add_vertex b ~label:"B" ~props:[ ("id", Value.Int 2); ("w", Value.Int 9) ] () in
  let _e0 = Builder.add_edge b ~src:v0 ~label:"x" ~dst:v1 ~props:[ ("since", Value.Int 7) ] () in
  let _e1 = Builder.add_edge b ~src:v1 ~label:"y" ~dst:v2 () in
  let _e2 = Builder.add_edge b ~src:v0 ~label:"y" ~dst:v2 () in
  Builder.build b

let test_graph_shape () =
  let g = small_graph () in
  Alcotest.(check int) "vertices" 3 (Graph.n_vertices g);
  Alcotest.(check int) "edges" 3 (Graph.n_edges g);
  Alcotest.(check int) "out degree v0" 2 (Graph.out_degree g 0);
  Alcotest.(check int) "in degree v2" 2 (Graph.in_degree g 2);
  Alcotest.(check int) "both degree v1" 2 (Graph.degree g ~dir:Graph.Both 1);
  let schema = Graph.schema g in
  Alcotest.(check int) "label of v2" (Schema.vertex_label_exn schema "B") (Graph.vertex_label g 2)

let test_graph_edge_consistency () =
  let g = small_graph () in
  (* Every out edge appears as an in edge on the far side with the same id. *)
  for v = 0 to Graph.n_vertices g - 1 do
    Graph.iter_adjacent g ~dir:Graph.Out v (fun ~target ~edge_id ~label ->
        Alcotest.(check int) "src endpoint" v (Graph.edge_src g edge_id);
        Alcotest.(check int) "dst endpoint" target (Graph.edge_dst g edge_id);
        Alcotest.(check int) "label" label (Graph.edge_label g edge_id);
        let found = ref false in
        Graph.iter_adjacent g ~dir:Graph.In target (fun ~target:back ~edge_id:eid ~label:_ ->
            if eid = edge_id && back = v then found := true);
        Alcotest.(check bool) "in-edge mirror" true !found)
  done

let test_graph_props_and_index () =
  let g = small_graph () in
  Alcotest.(check bool) "vertex prop" true
    (Value.equal (Value.Int 9) (Graph.vertex_prop_by_name g ~key:"w" 2));
  let key = Schema.property_key_exn (Graph.schema g) "id" in
  Alcotest.(check (array int)) "index lookup" [| 1 |] (Graph.index_lookup g ~key (Value.Int 1));
  Alcotest.(check (array int)) "index miss" [||] (Graph.index_lookup g ~key (Value.Int 99));
  let label_a = Schema.vertex_label_exn (Graph.schema g) "A" in
  Alcotest.(check (array int)) "label-scoped index" [| 1 |]
    (Graph.index_lookup g ~vertex_label:label_a ~key (Value.Int 1));
  let label_b = Schema.vertex_label_exn (Graph.schema g) "B" in
  Alcotest.(check (array int)) "scoped miss" [||]
    (Graph.index_lookup g ~vertex_label:label_b ~key (Value.Int 1));
  let since = Schema.property_key_exn (Graph.schema g) "since" in
  Alcotest.(check bool) "edge prop" true (Value.equal (Value.Int 7) (Graph.edge_prop g ~key:since 0))

(* Random graphs: builder output matches an adjacency-list model. *)
let graph_matches_model =
  QCheck.Test.make ~name:"builder matches adjacency model" ~count:60
    QCheck.(pair (int_range 1 20) (list (pair (int_range 0 19) (int_range 0 19))))
    (fun (n, edge_list) ->
      let edges = List.filter (fun (s, d) -> s < n && d < n) edge_list in
      let g = Builder.build (Builder.of_edges ~n_vertices:n (Array.of_list edges)) in
      let out_model = Array.make n [] in
      let in_model = Array.make n [] in
      List.iter
        (fun (s, d) ->
          out_model.(s) <- d :: out_model.(s);
          in_model.(d) <- s :: in_model.(d))
        edges;
      let ok = ref (Graph.n_edges g = List.length edges) in
      for v = 0 to n - 1 do
        let outs = List.sort compare (Array.to_list (Graph.adjacent g ~dir:Graph.Out v)) in
        let ins = List.sort compare (Array.to_list (Graph.adjacent g ~dir:Graph.In v)) in
        if outs <> List.sort compare out_model.(v) then ok := false;
        if ins <> List.sort compare in_model.(v) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "graph"
    [
      ( "value",
        [
          Alcotest.test_case "numeric compare" `Quick test_value_numeric_compare;
          Alcotest.test_case "add" `Quick test_value_add;
          qcheck value_compare_reflexive;
          qcheck value_compare_antisymmetric;
          qcheck value_compare_transitive;
          qcheck value_equal_hash;
          qcheck value_bytes_positive;
        ] );
      ("schema", [ Alcotest.test_case "interning" `Quick test_schema_interning ]);
      ("csr", [ Alcotest.test_case "build and scan" `Quick test_csr_build_and_scan ]);
      ("props", [ Alcotest.test_case "typed columns" `Quick test_props_typed_columns ]);
      ( "partition",
        [
          Alcotest.test_case "imbalance" `Quick test_partition_imbalance;
          Alcotest.test_case "imbalance boundaries" `Quick
            test_partition_imbalance_boundaries;
          Alcotest.test_case "adaptive table" `Quick test_partition_adaptive;
          qcheck partition_covers;
        ] );
      ( "graph",
        [
          Alcotest.test_case "shape" `Quick test_graph_shape;
          Alcotest.test_case "edge consistency" `Quick test_graph_edge_consistency;
          Alcotest.test_case "props and index" `Quick test_graph_props_and_index;
          qcheck graph_matches_model;
        ] );
    ]
