(* Protocol conformance + schedule exploration:

   - the shipped protocol specs pass the static totality checker, and the
     checker actually rejects broken specs (missing handler, unreachable
     state, terminal escape, phantom emit);
   - compiled monitors accept legal traces and reject illegal ones with
     the spec's own explanation;
   - replay tokens round-trip through their printable form;
   - the explorer is deterministic and finds nothing on the unmutated
     engine across every scenario;
   - each seeded protocol mutant is caught within the default budget, and
     its shrunk counterexample token replays to the same failure;
   - the pinned interleaving corpus stays conformant and oracle-equal. *)

module Protocol = Pstm_analysis.Protocol
module Explore = Pstm_analysis.Explore
open Pstm_mc

(* --- Static spec checking --- *)

let test_shipped_specs_total () =
  List.iter
    (fun (s : Protocol.spec) ->
      match Protocol.check_spec s with
      | [] -> ()
      | defects ->
        Alcotest.failf "spec %s has defects: %a" s.Protocol.sp_name
          (Fmt.list ~sep:(Fmt.any "; ") Protocol.pp_defect)
          defects)
    Protocol.all_specs

let base_spec =
  {
    Protocol.sp_name = "toy";
    states = [ "a"; "b" ];
    msgs = [ "go"; "stop" ];
    initial = "a";
    terminals = [ "b" ];
    trans = [ ("a", "go", "b") ];
    rejects = [ ("a", "stop", "stop before go"); ("b", "go", "go twice"); ("b", "stop", "late") ];
    emits = [ ("a", "go") ];
  }

let defect_count s = List.length (Protocol.check_spec s)

let test_checker_rejects_broken_specs () =
  Alcotest.(check int) "base spec is clean" 0 (defect_count base_spec);
  (* Missing handler: (a, stop) neither handled nor rejected. *)
  Alcotest.(check bool) "missing handler flagged" true
    (defect_count { base_spec with Protocol.rejects = [ ("b", "go", "x"); ("b", "stop", "x") ] }
    > 0);
  (* Unreachable state. *)
  Alcotest.(check bool) "unreachable state flagged" true
    (defect_count
       {
         base_spec with
         Protocol.states = [ "a"; "b"; "limbo" ];
         rejects = base_spec.Protocol.rejects @ [ ("limbo", "go", "x"); ("limbo", "stop", "x") ];
       }
    > 0);
  (* Terminal escape: a transition from the terminal back to a
     non-terminal state. *)
  Alcotest.(check bool) "terminal escape flagged" true
    (defect_count
       {
         base_spec with
         Protocol.trans = [ ("a", "go", "b"); ("b", "go", "a") ];
         rejects = [ ("a", "stop", "x"); ("b", "stop", "x") ];
       }
    > 0);
  (* Emit with no matching transition, and emit from a terminal. *)
  Alcotest.(check bool) "phantom emit flagged" true
    (defect_count { base_spec with Protocol.emits = [ ("a", "stop") ] } > 0);
  Alcotest.(check bool) "terminal emit flagged" true
    (defect_count
       {
         base_spec with
         Protocol.trans = [ ("a", "go", "b"); ("b", "stop", "b") ];
         rejects = [ ("a", "stop", "x"); ("b", "go", "x") ];
         emits = [ ("a", "go"); ("b", "stop") ];
       }
    > 0);
  (* Nondeterminism: (a, go) resolved twice. *)
  Alcotest.(check bool) "double handling flagged" true
    (defect_count
       { base_spec with Protocol.rejects = base_spec.Protocol.rejects @ [ ("a", "go", "x") ] }
    > 0)

(* --- Compiled monitors --- *)

let has_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1)) in
  at 0

let test_monitor_accepts_legal_channel_trace () =
  let c = Lazy.force Protocol.channel in
  let mon = Protocol.monitor c in
  let step key m = Protocol.step mon ~key ~msg:(Protocol.msg c m) in
  (* Happy path on one instance, retransmit-race on another. *)
  List.iter
    (fun (key, m) ->
      match step key m with
      | None -> ()
      | Some why -> Alcotest.failf "legal trace rejected at (%d, %s): %s" key m why)
    [
      (1, "send"); (1, "deliver"); (1, "ack");
      (2, "send"); (2, "retransmit"); (2, "deliver"); (2, "dup"); (2, "ack"); (2, "ack");
    ];
  Alcotest.(check int) "two instances touched" 2 (Protocol.instances mon);
  Alcotest.(check (option string)) "all terminal" None (Protocol.finish mon)

let test_monitor_rejects_double_delivery () =
  let c = Lazy.force Protocol.channel in
  let mon = Protocol.monitor c in
  let step m = Protocol.step mon ~key:7 ~msg:(Protocol.msg c m) in
  Alcotest.(check (option string)) "send ok" None (step "send");
  Alcotest.(check (option string)) "deliver ok" None (step "deliver");
  match step "deliver" with
  | Some why ->
    Alcotest.(check bool) "explains the dedup bypass" true
      (has_substring ~sub:"dedup" why)
  | None -> Alcotest.fail "second delivery of one seq accepted"

let test_monitor_finish_flags_stuck_instance () =
  let c = Lazy.force Protocol.channel in
  let mon = Protocol.monitor c in
  ignore (Protocol.step mon ~key:3 ~msg:(Protocol.msg c "send"));
  match Protocol.finish mon with
  | Some why -> Alcotest.(check bool) "names the state" true (has_substring ~sub:"inflight" why)
  | None -> Alcotest.fail "stuck in-flight packet not flagged"

let test_tracker_monitor_rejects_early_release () =
  let c = Lazy.force Protocol.tracker in
  let mon = Protocol.monitor c in
  let step m = Protocol.step mon ~key:0 ~msg:(Protocol.msg c m) in
  Alcotest.(check (option string)) "register ok" None (step "register");
  Alcotest.(check (option string)) "receive ok" None (step "receive");
  match step "release" with
  | Some why ->
    Alcotest.(check bool) "cites conservation" true
      (has_substring ~sub:"conservation" why)
  | None -> Alcotest.fail "release before completion accepted"

(* --- Replay tokens --- *)

let test_token_round_trip () =
  List.iter
    (fun s ->
      match Explore.token_of_string s with
      | Error e -> Alcotest.failf "%S failed to parse: %s" s e
      | Ok t -> Alcotest.(check string) ("round trip " ^ s) s (Explore.token_to_string t))
    [ "default"; "12=1"; "3=2,40=1"; "0=1,1=1,2=3" ];
  List.iter
    (fun s ->
      match Explore.token_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ "12"; "a=b"; "3=1,3=2"; "-1=2"; "4=-1" ]

(* --- Explorer on the unmutated engine --- *)

let small_budget = 24

let test_unmutated_scenarios_clean () =
  List.iter
    (fun s ->
      let report =
        Explore.explore ~budget:small_budget ~random_walks:6 ~run:(Mc.runner s) ()
      in
      (match report.Explore.counterexample with
      | None -> ()
      | Some cx ->
        Alcotest.failf "scenario %s: spurious counterexample %s (%s)" (Mc.name s)
          (Explore.token_to_string cx.Explore.cx_token)
          cx.Explore.cx_detail);
      Alcotest.(check bool)
        (Mc.name s ^ " explored several schedules")
        true
        (report.Explore.schedules > 1))
    Mc.scenarios

let test_explorer_deterministic () =
  let s = Mc.default in
  let go () = Explore.explore ~budget:small_budget ~random_walks:6 ~run:(Mc.runner s) () in
  Alcotest.(check bool) "identical reports" true (go () = go ())

let test_choice_points_observed () =
  let report = Explore.explore ~budget:8 ~random_walks:2 ~run:(Mc.runner Mc.default) () in
  Alcotest.(check bool) "ties exist" true (report.Explore.choice_points > 0);
  Alcotest.(check bool) "dependence classes tracked" true (report.Explore.max_classes >= 1)

(* --- Mutant detection --- *)

let test_mutants_caught_and_replayable () =
  List.iter
    (fun m ->
      let s = Mc.for_mutation m in
      let run = Mc.runner ~mutation:m s in
      let report = Explore.explore ~budget:64 ~random_walks:16 ~run () in
      match report.Explore.counterexample with
      | None ->
        Alcotest.failf "mutant %s escaped the explorer (scenario %s, %d schedules)"
          (Mutation.name m) (Mc.name s) report.Explore.schedules
      | Some cx ->
        (* The shrunk token must replay to a failure, twice (deterministic). *)
        let replay () = Explore.replay ~run cx.Explore.cx_token in
        let a = replay () and b = replay () in
        Alcotest.(check bool)
          (Mutation.name m ^ " replay still fails")
          true
          (a.Explore.violation <> None);
        Alcotest.(check bool) (Mutation.name m ^ " replay deterministic") true (a = b);
        (* And the unmutated engine passes the very same schedule. *)
        let clean = Explore.replay ~run:(Mc.runner s) cx.Explore.cx_token in
        (match clean.Explore.violation with
        | None -> ()
        | Some why ->
          Alcotest.failf "unmutated engine fails mutant %s's schedule: %s" (Mutation.name m)
            why))
    Mutation.all

(* --- Pinned interleaving corpus --- *)

let corpus () =
  (* dune runtest copies the dep next to the binary; dune exec runs from
     the workspace root. *)
  let path = if Sys.file_exists "mc_corpus.txt" then "mc_corpus.txt" else "test/mc_corpus.txt" in
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line ->
      let line = String.trim line in
      if String.equal line "" || line.[0] = '#' then go acc else go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_corpus_replays_conformant () =
  let lines = corpus () in
  Alcotest.(check bool) "corpus is non-empty" true (List.length lines > 0);
  List.iter
    (fun s ->
      let run = Mc.runner s in
      let reference = Explore.replay ~run [] in
      Alcotest.(check (option string))
        (Mc.name s ^ " default schedule clean")
        None reference.Explore.violation;
      List.iter
        (fun line ->
          match Explore.token_of_string line with
          | Error e -> Alcotest.failf "corpus token %S: %s" line e
          | Ok token ->
            let outcome = Explore.replay ~run token in
            (match outcome.Explore.violation with
            | None -> ()
            | Some why -> Alcotest.failf "%s under token %s: %s" (Mc.name s) line why);
            Alcotest.(check string)
              (Fmt.str "%s under token %s oracle-equal" (Mc.name s) line)
              reference.Explore.fingerprint outcome.Explore.fingerprint)
        lines)
    [ Mc.default; (match Mc.find "chaos" with Some s -> s | None -> Mc.default) ]

let () =
  Alcotest.run "mc"
    [
      ( "specs",
        [
          Alcotest.test_case "shipped specs are total" `Quick test_shipped_specs_total;
          Alcotest.test_case "checker rejects broken specs" `Quick
            test_checker_rejects_broken_specs;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "legal channel trace accepted" `Quick
            test_monitor_accepts_legal_channel_trace;
          Alcotest.test_case "double delivery rejected" `Quick test_monitor_rejects_double_delivery;
          Alcotest.test_case "finish flags stuck instance" `Quick
            test_monitor_finish_flags_stuck_instance;
          Alcotest.test_case "early release rejected" `Quick
            test_tracker_monitor_rejects_early_release;
        ] );
      ( "tokens",
        [ Alcotest.test_case "round trip" `Quick test_token_round_trip ] );
      ( "explorer",
        [
          Alcotest.test_case "unmutated scenarios clean" `Quick test_unmutated_scenarios_clean;
          Alcotest.test_case "deterministic" `Quick test_explorer_deterministic;
          Alcotest.test_case "choice points observed" `Quick test_choice_points_observed;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "all caught and replayable" `Quick
            test_mutants_caught_and_replayable;
        ] );
      ( "corpus",
        [ Alcotest.test_case "pinned interleavings conformant" `Quick
            test_corpus_replays_conformant ] );
    ]
