(* Hierarchical progress tracking at scale (64 simulated nodes):

   - flat and hierarchical tracking return identical rows (tracking is
     pure control plane — it must never change results);
   - the delegate tree actually absorbs load: root-tracker receipts drop
     below flat's, the delegate counters are live under a fanout and
     exactly zero without one;
   - both runs hold the sanitizer's invariants (weight conservation,
     coalescer/delegate emptiness at finish) at a worker count far past
     the paper's testbed. *)

open Pstm_engine
open Pstm_query

let sixty_four_nodes =
  { Cluster.default_config with Cluster.n_nodes = 64; workers_per_node = 2 }

let checked = { Engine.Common.default with Engine.Common.check = true }

let khop graph ~start hops =
  Compile.compile ~name:(Printf.sprintf "khop%d" hops) graph
    Dsl.(
      v_lookup ~key:"id" (int start)
      |> repeat ~dir:Graph.Out ~times:hops ()
      |> count |> build)

let run_tracked ~tracker_fanout graph subs =
  Async_engine.run
    ~options:{ Async_engine.default_options with Async_engine.tracker_fanout }
    ~common:checked ~cluster_config:sixty_four_nodes
    ~channel_config:Channel.default_config ~graph subs

let rows_sig report =
  Array.to_list
    (Array.map
       (fun q -> Fmt.str "%a" (Fmt.list (Fmt.array Value.pp)) (Engine.sorted_rows q.Engine.rows))
       report.Engine.queries)

let test_flat_vs_hier_64_nodes () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  let subs () =
    Array.map
      (fun start -> Engine.submit (khop graph ~start 3))
      [| 1; 17; 63 |]
  in
  let flat = run_tracked ~tracker_fanout:None graph (subs ()) in
  let hier = run_tracked ~tracker_fanout:(Some 4) graph (subs ()) in
  Alcotest.(check bool) "flat run completed" true (Engine.all_completed flat);
  Alcotest.(check bool) "hier run completed" true (Engine.all_completed hier);
  Alcotest.(check (list string)) "identical rows" (rows_sig flat) (rows_sig hier);
  let fm = flat.Engine.metrics and hm = hier.Engine.metrics in
  (* Flat tracking never touches the delegate tier. *)
  Alcotest.(check int) "flat: no delegate merges" 0 (Metrics.delegate_merges fm);
  Alcotest.(check int) "flat: no delegate forwards" 0 (Metrics.delegate_forwards fm);
  (* The tree must carry real load and shrink the root's fan-in. *)
  if Metrics.delegate_merges hm = 0 then Alcotest.fail "hier: delegate tier never merged";
  if Metrics.delegate_forwards hm = 0 then
    Alcotest.fail "hier: no subtree weight ever climbed the tree";
  let flat_rx = Metrics.tracker_updates fm and hier_rx = Metrics.tracker_updates hm in
  if hier_rx >= flat_rx then
    Alcotest.failf "root receipts did not drop: hier %d >= flat %d" hier_rx flat_rx

(* Weight conservation is the invariant the delegate tier must not bend:
   every phase still completes (the tracker saw the weight sum close)
   even though weights dwell in hold windows along the way. A double
   count would trip the sanitizer's post-completion receive check; a
   lost weight would hang the run (caught here by completion itself). *)
let test_conservation_through_tree () =
  let graph = Pstm_gen.Datasets.load Pstm_gen.Datasets.tiny in
  List.iter
    (fun fanout ->
      let report =
        run_tracked ~tracker_fanout:(Some fanout) graph
          [| Engine.submit (khop graph ~start:1 4) |]
      in
      if not (Engine.all_completed report) then
        Alcotest.failf "fanout %d: query did not complete" fanout)
    [ 1; 2; 4; 16; 128 ]

let () =
  Alcotest.run "scale"
    [
      ( "hierarchical-tracking",
        [
          Alcotest.test_case "flat vs tree at 64 nodes" `Quick test_flat_vs_hier_64_nodes;
          Alcotest.test_case "conservation across fanouts" `Quick
            test_conservation_through_tree;
        ] );
    ]
