(* graphdance — command-line front end.

   Subcommands:
     datasets                 list the built-in datasets and their sizes
     query    -d DS -q "..."  run a Gremlin query on a dataset
     explain  -d DS -q "..."  show the optimized plan without running it
     trace    -d DS -q "..."  run with tracing: operator stats + Chrome trace
     why      -d DS -q "..."  run with causal tracing: EXPLAIN LATENCY attribution
     chaos    -d DS -q "..."  run under injected faults, checked against the oracle
     mc       [-m MUTANT]     explore event interleavings; conformance + mutant catching
     repartition -d DS -q ... profile a workload, refine the owner table, compare
     ldbc     -d snb-s        run one pass of the LDBC IC/IS queries
     verify   -d DS [-q ...]  static-verify one query, or the LDBC suite

   Queries run on the simulated cluster; reported latency is simulated
   time on the modeled hardware (see DESIGN.md). Engines are addressed
   by their Registry name (-e graphdance|bsp|local|...). *)

open Cmdliner
open Pstm_engine
open Pstm_query

let dataset_presets =
  [
    ("tiny", `Rmat Pstm_gen.Datasets.tiny);
    ("lj-like", `Rmat Pstm_gen.Datasets.lj_like);
    ("fs-like", `Rmat Pstm_gen.Datasets.fs_like);
    ("snb-tiny", `Snb Pstm_ldbc.Snb_gen.snb_tiny);
    ("snb-s", `Snb Pstm_ldbc.Snb_gen.snb_s);
    ("snb-l", `Snb Pstm_ldbc.Snb_gen.snb_l);
  ]

let load_graph name =
  match List.assoc_opt name dataset_presets with
  | Some (`Rmat preset) -> Ok (Pstm_gen.Datasets.load preset)
  | Some (`Snb scale) -> Ok (Pstm_ldbc.Snb_gen.load scale).Pstm_ldbc.Snb_gen.graph
  | None ->
    Error
      (Fmt.str "unknown dataset %S (available: %s)" name
         (String.concat ", " (List.map fst dataset_presets)))

(* --- Arguments --- *)

let dataset_arg =
  let doc = "Dataset to run against (tiny, lj-like, fs-like, snb-tiny, snb-s, snb-l)." in
  Arg.(value & opt string "snb-tiny" & info [ "d"; "dataset" ] ~docv:"DATASET" ~doc)

let query_arg =
  let doc = "Gremlin query text, e.g. \"g.V().has('id', 3).out('knows').count()\"." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let engine_arg =
  let doc =
    Fmt.str "Execution engine: %s (or async, an alias for graphdance)."
      (String.concat ", " (Registry.names ()))
  in
  Arg.(value & opt string "graphdance" & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let nodes_arg =
  let doc = "Simulated cluster nodes." in
  Arg.(value & opt int 8 & info [ "nodes" ] ~doc)

let workers_arg =
  let doc = "Worker threads per node (one graph partition each)." in
  Arg.(value & opt int 16 & info [ "workers" ] ~doc)

let batched_arg =
  let doc =
    "Enable frontier-batched execution: fusable Expand/Filter chains run as CSR-range \
     scans over each (partition, step) batch, and remote children ship as one coalesced \
     message per destination. Only the async engine batches; the oracle ignores the flag."
  in
  Arg.(value & flag & info [ "batched" ] ~doc)

let fanout_arg =
  let doc =
    "Hierarchical progress tracking: arrange workers into a $(docv)-ary delegate tree per \
     query, so coalesced finished weights climb toward the coordinator one merged message \
     per hop instead of all landing on it directly. 0 (the default) keeps the paper's flat \
     tracker. Only the async flavors honor the flag."
  in
  Arg.(value & opt int 0 & info [ "tracker-fanout" ] ~docv:"FANOUT" ~doc)

(* --- Commands --- *)

let datasets_cmd =
  let run () =
    Fmt.pr "%-10s %12s %12s %10s  %s@." "name" "vertices" "edges" "size" "stands in for";
    List.iter
      (fun (name, kind) ->
        let paper, graph =
          match kind with
          | `Rmat preset ->
            (preset.Pstm_gen.Datasets.paper_name, Pstm_gen.Datasets.load preset)
          | `Snb scale ->
            ( scale.Pstm_ldbc.Snb_gen.paper_name,
              (Pstm_ldbc.Snb_gen.load scale).Pstm_ldbc.Snb_gen.graph )
        in
        Fmt.pr "%-10s %12d %12d %8.1fMB  %s@." name (Graph.n_vertices graph)
          (Graph.n_edges graph)
          (float_of_int (Graph.bytes graph) /. 1e6)
          paper)
      dataset_presets
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List built-in datasets")
    Term.(const (fun () -> run (); 0) $ const ())

let compile_query graph text =
  match Parser.parse text with
  | Error message -> Error ("parse error: " ^ message)
  | Ok ast -> begin
    match Compile.compile ~name:"cli" graph ast with
    | program -> Ok program
    | exception Compile.Error message -> Error ("compile error: " ^ message)
  end

(* Resolve an engine name against a registry built for the requested
   topology. *)
let resolve_engine ?tracker_fanout ~config name =
  let registry = Registry.make ~cluster_config:config ?tracker_fanout () in
  match Registry.find ~registry name with
  | Some e -> Ok e
  | None ->
    Error
      (Fmt.str "unknown engine %S (available: %s, or async)" name
         (String.concat ", " (Registry.names ~registry ())))

let run_query dataset text engine nodes workers batched fanout =
  let ( let* ) = Result.bind in
  let* graph = load_graph dataset in
  let* program = compile_query graph text in
  let config = { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers } in
  let tracker_fanout = if fanout > 0 then Some fanout else None in
  let* (module E : Engine.S) = resolve_engine ?tracker_fanout ~config engine in
  let common = Engine.Common.with_batched batched Engine.Common.default in
  let report = E.run ~common ~graph [| Engine.submit program |] in
  let q = report.Engine.queries.(0) in
  let rows = q.Engine.rows in
  (* The oracle has no clock, so its synthesized report carries no
     meaningful latency. *)
  let latency = if E.name = "local" then None else Engine.latency q in
  List.iter (fun row -> Fmt.pr "%a@." (Fmt.array ~sep:(Fmt.any " | ") Value.pp) row) rows;
  Fmt.pr "-- %d row(s)%a@." (List.length rows)
    (fun ppf -> function
      | None -> ()
      | Some l -> Fmt.pf ppf "; simulated latency %a" Sim_time.pp l)
    latency;
  (if batched then
     let m = report.Engine.metrics in
     Fmt.pr "-- batching: %d batch(es), %d traverser(s) batched, %d coalesced message(s)@."
       (Metrics.batches m) (Metrics.batched_traversers m) (Metrics.coalesced_msgs m));
  (if fanout > 0 then
     let m = report.Engine.metrics in
     Fmt.pr "-- tracking: %d delegate merge(s), %d forwarded up-tree, %d root receipt(s)@."
       (Metrics.delegate_merges m) (Metrics.delegate_forwards m) (Metrics.tracker_updates m));
  Ok ()

let to_exit = function
  | Ok () -> 0
  | Error message ->
    Fmt.epr "graphdance: %s@." message;
    1

let query_cmd =
  let run dataset text engine nodes workers batched fanout =
    to_exit (run_query dataset text engine nodes workers batched fanout)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a Gremlin query on a simulated cluster")
    Term.(
      const run $ dataset_arg $ query_arg $ engine_arg $ nodes_arg $ workers_arg $ batched_arg
      $ fanout_arg)

let explain_cmd =
  let run dataset text =
    to_exit
      (let ( let* ) = Result.bind in
       let* graph = load_graph dataset in
       let* program = compile_query graph text in
       Fmt.pr "%a@." Program.pp program;
       Ok ())
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the optimized PSTM plan for a query")
    Term.(const run $ dataset_arg $ query_arg)

let verify_cmd =
  let opt_query_arg =
    let doc = "Gremlin query to verify; without it the whole LDBC IC/IS suite is checked." in
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)
  in
  let report name program =
    let diags = Pstm_analysis.Verify.check_program program in
    List.iter (fun d -> Fmt.pr "%s: %a@." name Pstm_analysis.Diagnostic.pp d) diags;
    let ok = Pstm_analysis.Verify.is_clean diags in
    if ok then
      Fmt.pr "%-5s ok (%d steps, %d phases)@." name (Program.n_steps program)
        (Program.n_phases program);
    ok
  in
  let run dataset text =
    to_exit
      (let ( let* ) = Result.bind in
       match text with
       | Some text ->
         let* graph = load_graph dataset in
         (* Compile.finish already gates on the verifier, so reaching the
            report below means the program is clean; a rejected program
            surfaces as the compile/verification error text. *)
         let* program =
           match compile_query graph text with
           | Ok _ as ok -> ok
           | Error _ as e -> e
           | exception Program.Invalid message -> Error ("verification error: " ^ message)
         in
         if report "query" program then Ok () else Error "verification failed"
       | None -> begin
         match List.assoc_opt dataset dataset_presets with
         | Some (`Snb scale) ->
           let data = Pstm_ldbc.Snb_gen.load scale in
           let prng = Prng.create 7 in
           let failures = ref 0 in
           List.iter
             (fun (name, make) ->
               match make data prng with
               | program -> if not (report name program) then incr failures
               | exception Program.Invalid message ->
                 incr failures;
                 Fmt.pr "%-5s REJECTED: %s@." name message)
             (Pstm_ldbc.Ic_queries.all @ Pstm_ldbc.Is_queries.all);
           if !failures = 0 then Ok ()
           else Error (Fmt.str "%d program(s) failed verification" !failures)
         | _ -> Error "verify without -q requires an SNB dataset (snb-tiny, snb-s, snb-l)"
       end)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Statically verify compiled programs (weight flow, memo lifetime, registers)")
    Term.(const run $ dataset_arg $ opt_query_arg)

let trace_cmd =
  let trace_out_arg =
    let doc = "Write the Chrome trace-event JSON (open in chrome://tracing or Perfetto) here." in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let trace_engine_arg =
    let doc = "Execution engine to trace: async (GraphDance) or bsp." in
    Arg.(value & opt (enum [ ("async", `Async); ("bsp", `Bsp) ]) `Async
         & info [ "e"; "engine" ] ~doc)
  in
  let run dataset text engine nodes workers trace_out =
    to_exit
      (let ( let* ) = Result.bind in
       let* graph = load_graph dataset in
       let* program = compile_query graph text in
       let config =
         { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
       in
       let obs = Pstm_obs.Recorder.create () in
       let common = Engine.Common.with_obs obs Engine.Common.default in
       let report =
         match engine with
         | `Async ->
           Async_engine.run ~common ~cluster_config:config
             ~channel_config:Channel.default_config ~graph
             [| Engine.submit program |]
         | `Bsp ->
           Bsp_engine.run ~common ~cluster_config:config ~graph [| Engine.submit program |]
       in
       let q = report.Engine.queries.(0) in
       let step_label i = Step.op_summary (Program.step program i).Step.op in
       Fmt.pr "%a@." (Pstm_obs.Opstats.pp_table ~step_label) (Pstm_obs.Recorder.opstats obs);
       Fmt.pr "%a@." Engine.pp_query q;
       let trace = Pstm_obs.Recorder.trace obs in
       Fmt.pr "trace: %d event(s) recorded, %d dropped@." (Pstm_obs.Trace.length trace)
         (Pstm_obs.Trace.dropped trace);
       (match trace_out with
       | None -> ()
       | Some path ->
         Pstm_obs.Json.write_file path (Pstm_obs.Trace.to_chrome_json trace);
         Fmt.pr "trace written to %s@." path);
       Ok ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a query with tracing: operator stats table plus a Chrome trace-event file")
    Term.(
      const run $ dataset_arg $ query_arg $ trace_engine_arg $ nodes_arg $ workers_arg
      $ trace_out_arg)

let why_cmd =
  let json_arg =
    let doc = "Also write the full causal attribution JSON here." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let segments_arg =
    let doc = "Show the N longest critical-path segments." in
    Arg.(value & opt int 10 & info [ "segments" ] ~docv:"N" ~doc)
  in
  let slow_arg =
    let doc = "Inject a straggler node as NODE:FACTOR (e.g. 0:8.0); repeatable." in
    Arg.(value & opt_all string [] & info [ "slow" ] ~docv:"NODE:FACTOR" ~doc)
  in
  let run dataset text nodes workers batched slow json segments =
    to_exit
      (let ( let* ) = Result.bind in
       let* graph = load_graph dataset in
       let* program = compile_query graph text in
       let parse_slow s =
         match String.split_on_char ':' s with
         | [ node; factor ] -> begin
           match (int_of_string_opt node, float_of_string_opt factor) with
           | Some n, Some f -> Ok (n, f)
           | _ -> Error (Fmt.str "bad --slow %S (expected NODE:FACTOR)" s)
         end
         | _ -> Error (Fmt.str "bad --slow %S (expected NODE:FACTOR)" s)
       in
       let rec parse_all = function
         | [] -> Ok []
         | x :: rest ->
           Result.bind (parse_slow x) (fun v ->
               Result.map (fun vs -> v :: vs) (parse_all rest))
       in
       let* slow_nodes = parse_all slow in
       let config =
         { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
       in
       let obs = Pstm_obs.Recorder.create ~causal:true () in
       let faults =
         if slow_nodes = [] then None else Some { Faults.none with Faults.slow_nodes }
       in
       let common =
         { Engine.Common.default with Engine.Common.obs; batched; faults }
       in
       let report =
         Async_engine.run ~common ~cluster_config:config
           ~channel_config:Channel.default_config ~graph
           [| Engine.submit program |]
       in
       let q = report.Engine.queries.(0) in
       Fmt.pr "%a@." Engine.pp_query q;
       let causal = Pstm_obs.Recorder.causal obs in
       match Pstm_obs.Causal.critical_path causal ~qid:0 with
       | None -> Error "no complete causal path (query timed out or DAG truncated)"
       | Some path ->
         Fmt.pr "%a@." (fun ppf () -> Pstm_obs.Causal.pp_explain ppf causal ~qid:0) ();
         let longest =
           List.sort
             (fun a b -> compare (Pstm_obs.Causal.seg_dur b) (Pstm_obs.Causal.seg_dur a))
             path
         in
         let top = List.filteri (fun i _ -> i < segments) longest in
         Fmt.pr "longest segments (of %d on the critical path):@." (List.length path);
         List.iter
           (fun (s : Pstm_obs.Causal.seg) ->
             Fmt.pr "  %-22s %-14s -> %-14s %a@."
               (Pstm_obs.Causal.category_name s.Pstm_obs.Causal.seg_cat)
               s.Pstm_obs.Causal.seg_src s.Pstm_obs.Causal.seg_dst Sim_time.pp
               (Pstm_obs.Causal.seg_dur s))
           top;
         (match json with
         | None -> ()
         | Some path ->
           Pstm_obs.Json.write_file path (Pstm_obs.Causal.to_json causal);
           Fmt.pr "causal attribution written to %s@." path);
         Ok ())
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Run a query with causal tracing and explain where its latency went: critical-path \
          extraction over the hand-off DAG, attributed to compute / queue-wait / network / \
          retransmit-recovery / barrier / tracker-coordination")
    Term.(
      const run $ dataset_arg $ query_arg $ nodes_arg $ workers_arg $ batched_arg $ slow_arg
      $ json_arg $ segments_arg)

let chaos_cmd =
  let drop_arg =
    let doc = "Probability of dropping each cross-node packet." in
    Arg.(value & opt float 0.05 & info [ "drop" ] ~docv:"P" ~doc)
  in
  let dup_arg =
    let doc = "Probability of duplicating each cross-node packet." in
    Arg.(value & opt float 0.0 & info [ "dup" ] ~docv:"P" ~doc)
  in
  let delay_prob_arg =
    let doc = "Probability of a delay spike on each cross-node packet." in
    Arg.(value & opt float 0.0 & info [ "delay-prob" ] ~docv:"P" ~doc)
  in
  let delay_us_arg =
    let doc = "Delay-spike magnitude in simulated microseconds." in
    Arg.(value & opt int 200 & info [ "delay-us" ] ~docv:"US" ~doc)
  in
  let slow_arg =
    let doc = "Straggler node as NODE:FACTOR (e.g. 0:3.0); repeatable." in
    Arg.(value & opt_all string [] & info [ "slow" ] ~docv:"NODE:FACTOR" ~doc)
  in
  let pause_arg =
    let doc = "Pause window as NODE:FROM_US:DUR_US (e.g. 1:100:500); repeatable." in
    Arg.(value & opt_all string [] & info [ "pause" ] ~docv:"NODE:FROM_US:DUR_US" ~doc)
  in
  let seed_arg =
    let doc = "Fault-schedule seed; same seed, same workload: same run, byte for byte." in
    Arg.(value & opt int 0xFA01 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let deadline_ms_arg =
    let doc = "Optional deadline in simulated milliseconds; queries past it report TIMEOUT." in
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let parse_slow s =
    match String.split_on_char ':' s with
    | [ node; factor ] -> begin
      match (int_of_string_opt node, float_of_string_opt factor) with
      | Some n, Some f -> Ok (n, f)
      | _ -> Error (Fmt.str "bad --slow %S (expected NODE:FACTOR)" s)
    end
    | _ -> Error (Fmt.str "bad --slow %S (expected NODE:FACTOR)" s)
  in
  let parse_pause s =
    match String.split_on_char ':' s with
    | [ node; from_us; dur_us ] -> begin
      match (int_of_string_opt node, int_of_string_opt from_us, int_of_string_opt dur_us) with
      | Some n, Some f, Some d ->
        Ok (Faults.pause ~node:n ~from_:(Sim_time.us f) ~until:(Sim_time.us (f + d)))
      | _ -> Error (Fmt.str "bad --pause %S (expected NODE:FROM_US:DUR_US)" s)
    end
    | _ -> Error (Fmt.str "bad --pause %S (expected NODE:FROM_US:DUR_US)" s)
  in
  let rec parse_all parse = function
    | [] -> Ok []
    | x :: rest ->
      Result.bind (parse x) (fun v -> Result.map (fun vs -> v :: vs) (parse_all parse rest))
  in
  let run dataset text engine nodes workers batched drop dup delay_prob delay_us slow pauses
      seed deadline_ms =
    to_exit
      (let ( let* ) = Result.bind in
       let* graph = load_graph dataset in
       let* program = compile_query graph text in
       let* slow_nodes = parse_all parse_slow slow in
       let* pauses = parse_all parse_pause pauses in
       let config =
         { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
       in
       let* (module E : Engine.S) = resolve_engine ~config engine in
       let spec =
         {
           Faults.none with
           Faults.seed;
           drop;
           duplicate = dup;
           delay_prob;
           delay = Sim_time.us delay_us;
           slow_nodes;
           pauses;
         }
       in
       let common =
         {
           Engine.Common.default with
           Engine.Common.check = true;
           batched;
           faults = Some spec;
           deadline = Option.map Sim_time.ms deadline_ms;
         }
       in
       let* report =
         match E.run ~common ~graph [| Engine.submit program |] with
         | report -> Ok report
         | exception Engine.Check_violation message -> Error ("sanitizer: " ^ message)
         | exception Invalid_argument message -> Error message
       in
       let q = report.Engine.queries.(0) in
       (match Engine.completed_at q with
       | Some _ ->
         let oracle = Engine.sorted_rows (Local_engine.run graph program) in
         let got = Engine.sorted_rows q.Engine.rows in
         if got = oracle then
           Fmt.pr "completed: %d row(s), exact match against the oracle@."
             (List.length got)
         else
           Fmt.pr "completed: %d row(s), MISMATCH against the oracle (%d row(s))@."
             (List.length got) (List.length oracle)
       | None -> Fmt.pr "TIMEOUT (graceful: state reclaimed, no results)@.");
       Fmt.pr "%a@." Engine.pp_query q;
       let m = report.Engine.metrics in
       Fmt.pr
         "faults: drops=%d dups=%d delays=%d | recovery: retransmits=%d dedup-discards=%d \
          acks=%d abandoned=%d@."
         (Metrics.fault_drops m) (Metrics.fault_dups m) (Metrics.fault_delays m)
         (Metrics.retransmits m) (Metrics.dup_dropped m) (Metrics.acks m)
         (Metrics.abandoned m);
       (* A completed query under an active sanitizer is the whole point:
          faults hit, recovery absorbed them, invariants held. *)
       match Engine.completed_at q with
       | Some _ -> Ok ()
       | None when deadline_ms <> None -> Ok ()
       | None -> Error "query did not complete and no deadline was set")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a query under injected faults (drop/duplicate/delay, stragglers, pauses) with \
          the sanitizer on, and check results against the reference oracle")
    Term.(
      const run $ dataset_arg $ query_arg $ engine_arg $ nodes_arg $ workers_arg $ batched_arg
      $ drop_arg $ dup_arg $ delay_prob_arg $ delay_us_arg $ slow_arg $ pause_arg $ seed_arg
      $ deadline_ms_arg)

let mc_cmd =
  let module Explore = Pstm_analysis.Explore in
  let module Mc = Pstm_mc.Mc in
  let scenario_arg =
    let doc =
      Fmt.str
        "Scenario to explore: %s, or \"auto\" to pick per mutant (khop when unmutated)."
        (String.concat ", " (List.map Mc.name Mc.scenarios))
    in
    Arg.(value & opt string "auto" & info [ "s"; "scenario" ] ~docv:"SCENARIO" ~doc)
  in
  let budget_arg =
    let doc = "Schedule budget: total engine runs, including shrink replays." in
    Arg.(value & opt int 64 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let walks_arg =
    let doc = "Seeded random walks out of the budget (the rest is systematic DPOR)." in
    Arg.(value & opt int 16 & info [ "walks" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Random-walk seed." in
    Arg.(value & opt int 0x90c & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let mutant_arg =
    let doc =
      Fmt.str
        "Seed a protocol mutant and demonstrate the checkers catch it: %s, or \"all\" for \
         the whole table."
        (String.concat ", " (List.map Mutation.name Mutation.all))
    in
    Arg.(value & opt (some string) None & info [ "m"; "mutant" ] ~docv:"MUTANT" ~doc)
  in
  let token_arg =
    let doc =
      "Replay one exact schedule instead of exploring (a token printed by a previous run, \
       e.g. \"12=1,40=2\" or \"default\")."
    in
    Arg.(value & opt (some string) None & info [ "t"; "token" ] ~docv:"TOKEN" ~doc)
  in
  let resolve_scenario name ~mutation =
    match (name, mutation) with
    | "auto", Some m -> Ok (Mc.for_mutation m)
    | "auto", None -> Ok Mc.default
    | _ -> begin
      match Mc.find name with
      | Some s -> Ok s
      | None ->
        Error
          (Fmt.str "unknown scenario %S (available: %s, auto)" name
             (String.concat ", " (List.map Mc.name Mc.scenarios)))
    end
  in
  let resolve_mutants = function
    | None -> Ok []
    | Some "all" -> Ok Mutation.all
    | Some name -> begin
      match Mutation.of_string name with
      | Some m -> Ok [ m ]
      | None ->
        Error
          (Fmt.str "unknown mutant %S (available: %s, all)" name
             (String.concat ", " (List.map Mutation.name Mutation.all)))
    end
  in
  let pp_report ppf (r : Explore.report) =
    Fmt.pf ppf "schedules=%d choice-points=%d dependence-classes=%d" r.Explore.schedules
      r.Explore.choice_points r.Explore.max_classes
  in
  let run scenario budget walks seed mutant token =
    to_exit
      (let ( let* ) = Result.bind in
       let* mutants = resolve_mutants mutant in
       match token with
       | Some tok ->
         (* Exact replay of one schedule, optionally under one mutant. *)
         let mutation = match mutants with [] -> None | m :: _ -> Some m in
         let* s = resolve_scenario scenario ~mutation in
         let* t = Explore.token_of_string tok in
         let o = Explore.replay ~run:(Mc.runner ?mutation s) t in
         (match (o.Explore.violation, mutation) with
         | None, _ ->
           Fmt.pr "scenario %s, schedule %s: conformant@." (Mc.name s)
             (Explore.token_to_string t);
           Ok ()
         | Some why, Some m ->
           Fmt.pr "scenario %s, schedule %s under mutant %s:@.  %s@." (Mc.name s)
             (Explore.token_to_string t) (Mutation.name m) why;
           Ok ()
         | Some why, None ->
           Error (Fmt.str "schedule %s violates: %s" (Explore.token_to_string t) why))
       | None -> begin
         match mutants with
         | [] ->
           (* Conformance sweep: the unmutated engine must survive every
              explored schedule. *)
           let* s = resolve_scenario scenario ~mutation:None in
           let report =
             Explore.explore ~budget ~random_walks:walks ~seed ~run:(Mc.runner s) ()
           in
           Fmt.pr "scenario %s: %a@." (Mc.name s) pp_report report;
           (match report.Explore.counterexample with
           | None ->
             Fmt.pr "no violation found within budget@.";
             Ok ()
           | Some cx ->
             Error
               (Fmt.str "violation on schedule %s (shrunk from %s, %d shrink replays): %s"
                  (Explore.token_to_string cx.Explore.cx_token)
                  (Explore.token_to_string cx.Explore.cx_raw)
                  cx.Explore.cx_shrink_tries cx.Explore.cx_detail))
         | mutants ->
           (* Mutation-catching table: every seeded protocol corruption
              must be detected within the budget, and the shrunk token
              must replay to the same failure. *)
           let escaped = ref [] in
           List.iter
             (fun m ->
               let s =
                 match resolve_scenario scenario ~mutation:(Some m) with
                 | Ok s -> s
                 | Error _ -> Mc.for_mutation m
               in
               let run_fn = Mc.runner ~mutation:m s in
               let report = Explore.explore ~budget ~random_walks:walks ~seed ~run:run_fn () in
               match report.Explore.counterexample with
               | Some cx ->
                 Fmt.pr "%-22s %-10s caught in %3d schedule(s)  replay: -m %s -t %S@.  %s@."
                   (Mutation.name m) (Mc.name s) report.Explore.schedules (Mutation.name m)
                   (Explore.token_to_string cx.Explore.cx_token)
                   cx.Explore.cx_detail
               | None ->
                 escaped := Mutation.name m :: !escaped;
                 Fmt.pr "%-22s %-10s ESCAPED after %d schedule(s) (%a)@." (Mutation.name m)
                   (Mc.name s) report.Explore.schedules pp_report report)
             mutants;
           match !escaped with
           | [] -> Ok ()
           | names ->
             Error (Fmt.str "mutant(s) escaped: %s" (String.concat ", " (List.rev names)))
       end)
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Explore same-timestamp event interleavings of the async engine (bounded DPOR + \
          random walks), checking protocol-monitor conformance and oracle-equal results on \
          every schedule; optionally seed protocol mutants to validate the checkers")
    Term.(
      const run $ scenario_arg $ budget_arg $ walks_arg $ seed_arg $ mutant_arg $ token_arg)

let repartition_cmd =
  let repeats_arg =
    let doc = "How many staggered submissions of the query make up the profiled workload." in
    Arg.(value & opt int 8 & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let max_imbalance_arg =
    let doc = "Per-partition vertex-count cap for refinement, as a factor of the mean." in
    Arg.(value & opt float 1.1 & info [ "max-imbalance" ] ~docv:"F" ~doc)
  in
  let run dataset text nodes workers repeats max_imbalance =
    to_exit
      (let ( let* ) = Result.bind in
       let* graph = load_graph dataset in
       let* program = compile_query graph text in
       if repeats < 1 then invalid_arg "--repeats must be at least 1";
       let config =
         { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
       in
       let n_parts = nodes * workers in
       let subs =
         Array.init repeats (fun i -> Engine.submit ~at:(Sim_time.us (i * 20)) program)
       in
       let run_with ?common options =
         Async_engine.run ?common ~options ~cluster_config:config
           ~channel_config:Channel.default_config ~graph subs
       in
       let remote_bytes (r : Engine.report) =
         Metrics.message_bytes r.Engine.metrics Metrics.Traverser_msg
       in
       (* Profile the hash baseline, refine offline, then measure the
          refined table warm (frozen) and the online protocol cold. *)
       let obs = Pstm_obs.Recorder.create () in
       let hash =
         run_with
           ~common:(Engine.Common.with_obs obs Engine.Common.default)
           Async_engine.default_options
       in
       let traffic = Pstm_obs.Recorder.traffic obs in
       let profile =
         Array.map
           (fun (u, v, _count, bytes) -> (u, v, bytes))
           (Pstm_obs.Traffic.edges traffic)
       in
       Fmt.pr "profiled: %d remote hop(s), %d byte(s), %d vertex pair(s)@."
         (Pstm_obs.Traffic.total_count traffic)
         (Pstm_obs.Traffic.total_bytes traffic)
         (Pstm_obs.Traffic.distinct_edges traffic);
       let assignment =
         Partition.to_assignment
           (Partition.create ~strategy:Partition.Hash ~n_parts
              ~n_vertices:(Graph.n_vertices graph) ())
       in
       let moves, stats =
         Repartition.refine ~max_imbalance ~max_heat_imbalance:1.5 ~n_parts ~assignment
           profile
       in
       Fmt.pr
         "refinement: cut %d -> %d of %d profiled byte(s) (%.1f%% cut reduction), %d \
          move(s), %d pass(es), imbalance %.2f -> %.2f@."
         stats.Repartition.cut_before stats.Repartition.cut_after
         stats.Repartition.total_weight
         (100.0
         *. (1.0
            -. float_of_int stats.Repartition.cut_after
               /. Float.max (float_of_int stats.Repartition.cut_before) 1.0))
         stats.Repartition.moves stats.Repartition.passes stats.Repartition.imbalance_before
         stats.Repartition.imbalance_after;
       let refined = Array.copy assignment in
       List.iter (fun m -> refined.(m.Repartition.vertex) <- m.Repartition.dst) moves;
       let adaptive partition =
         { Async_engine.default_options with Async_engine.partition }
       in
       let warm =
         run_with
           {
             (adaptive Partition.Adaptive) with
             Async_engine.initial_assignment = Some refined;
             adaptive =
               { Async_engine.default_adaptive with Async_engine.min_traffic = max_int };
           }
       in
       let cold = run_with (adaptive Partition.Adaptive) in
       let report_line label (r : Engine.report) =
         let m = r.Engine.metrics in
         let bytes = remote_bytes r in
         Fmt.pr
           "%-15s remote traverser bytes %9d (%+.1f%% vs hash), p99 %.2fms, migrations \
            %d, forwarded %d@."
           label bytes
           (100.0 *. (float_of_int bytes /. Float.max (float_of_int (remote_bytes hash)) 1.0 -. 1.0))
           (Engine.p99_latency_ms r) (Metrics.migrations m) (Metrics.forwarded m)
       in
       report_line "hash:" hash;
       report_line "adaptive-warm:" warm;
       report_line "adaptive-cold:" cold;
       Ok ())
  in
  Cmd.v
    (Cmd.info "repartition"
       ~doc:
         "Profile a query workload's cross-partition traffic, refine the owner table, and \
          compare hash vs adaptive partitioning")
    Term.(
      const run $ dataset_arg $ query_arg $ nodes_arg $ workers_arg $ repeats_arg
      $ max_imbalance_arg)

let ldbc_cmd =
  let per_query_arg =
    let doc = "Run each query several times with fresh parameters and print per-query mean/p99." in
    Arg.(value & flag & info [ "per-query" ] ~doc)
  in
  let repeats_arg =
    let doc = "Runs per query under --per-query." in
    Arg.(value & opt int 5 & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let run dataset nodes workers per_query repeats =
    to_exit
      (match List.assoc_opt dataset dataset_presets with
      | Some (`Snb scale) ->
        let data = Pstm_ldbc.Snb_gen.load scale in
        let config =
          { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
        in
        let prng = Prng.create 7 in
        let run_once program =
          Async_engine.run ~cluster_config:config ~channel_config:Channel.default_config
            ~graph:data.Pstm_ldbc.Snb_gen.graph
            [| Engine.submit program |]
        in
        if per_query then begin
          if repeats < 1 then invalid_arg "--repeats must be at least 1";
          Fmt.pr "%-5s %8s %10s %10s %10s@." "query" "runs" "mean-ms" "p99-ms" "rows";
          List.iter
            (fun (name, make) ->
              let rows = ref 0 in
              let latencies =
                Array.init repeats (fun _ ->
                    let report = run_once (make data prng) in
                    let q = report.Engine.queries.(0) in
                    rows := !rows + List.length q.Engine.rows;
                    Engine.latency_ms q)
              in
              Fmt.pr "%-5s %8d %10.3f %10.3f %10.1f@." name repeats (Stats.mean latencies)
                (Stats.percentile latencies 99.0)
                (float_of_int !rows /. float_of_int repeats))
            (Pstm_ldbc.Ic_queries.all @ Pstm_ldbc.Is_queries.all)
        end
        else
          List.iter
            (fun (name, make) ->
              let report = run_once (make data prng) in
              Fmt.pr "%-5s %a@." name Engine.pp_query report.Engine.queries.(0))
            (Pstm_ldbc.Ic_queries.all @ Pstm_ldbc.Is_queries.all);
        Ok ()
      | _ -> Error "ldbc requires an SNB dataset (snb-tiny, snb-s, snb-l)")
  in
  Cmd.v
    (Cmd.info "ldbc" ~doc:"Run one pass of the LDBC IC and IS queries")
    Term.(const run $ dataset_arg $ nodes_arg $ workers_arg $ per_query_arg $ repeats_arg)

(* --- serve: open-loop multi-tenant service ----------------------------- *)

let serve_cmd =
  let module Service = Pstm_service.Service in
  let module Arrival = Pstm_service.Arrival in
  let rate_arg =
    let doc = "Offered load per tenant: Poisson arrival rate in queries/second (simulated)." in
    Arg.(value & opt float 20_000.0 & info [ "rate" ] ~docv:"QPS" ~doc)
  in
  let duration_arg =
    let doc = "Arrival horizon in simulated milliseconds (queued work still drains after)." in
    Arg.(value & opt float 5.0 & info [ "duration" ] ~docv:"MS" ~doc)
  in
  let slo_arg =
    let doc = "Target p99 latency (the SLO) in simulated milliseconds." in
    Arg.(value & opt float 1.0 & info [ "slo" ] ~docv:"MS" ~doc)
  in
  let tenants_arg =
    let doc =
      "Number of tenants; tenant $(i,k) gets weighted-fair weight $(i,k)+1, so shares are \
       1:2:...:N."
    in
    Arg.(value & opt int 2 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let no_admission_arg =
    let doc = "Disable admission control (the collapse-under-overload baseline)." in
    Arg.(value & flag & info [ "no-admission" ] ~doc)
  in
  let patience_arg =
    let doc =
      "Client patience in simulated milliseconds: a query not finished by then is abandoned \
       (queued: dropped; mid-flight: scoped engine cancellation)."
    in
    Arg.(value & opt (some float) None & info [ "patience" ] ~docv:"MS" ~doc)
  in
  let seed_arg =
    let doc = "Arrival-process seed (same seed, same run)." in
    Arg.(value & opt int 0x5e12 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let check_arg =
    let doc = "Run with the sanitizer on (tracker/memo leak detection under cancellation)." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run dataset text engine nodes workers rate duration slo tenants no_admission patience
      seed check fanout =
    to_exit
      (let ( let* ) = Result.bind in
       let* graph = load_graph dataset in
       let* program = compile_query graph text in
       let config =
         { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
       in
       let tracker_fanout = if fanout > 0 then Some fanout else None in
       let* engine = resolve_engine ?tracker_fanout ~config engine in
       if tenants < 1 then Error "serve: --tenants must be at least 1"
       else begin
         let ms_time v = Sim_time.of_float_ns (v *. 1e6) in
         let patience = Option.map ms_time patience in
         let service_config =
           Service.config ~max_inflight:(2 * nodes) ~slo:(ms_time slo)
             ~admission:(not no_admission) ~headroom:1.5 ~seed ~horizon:(ms_time duration)
             (Array.init tenants (fun k ->
                  Service.tenant
                    ~weight:(float_of_int (k + 1))
                    ?patience
                    (Arrival.Poisson { rate_qps = rate })))
         in
         let common = { Engine.Common.default with Engine.Common.check } in
         match
           Service.run engine ~common ~graph ~config:service_config
             ~program:(fun ~tenant:_ ~seq:_ -> program)
             ()
         with
         | exception Engine.Check_violation message -> Error ("sanitizer: " ^ message)
         | r ->
           Fmt.pr
             "engine=%s offered=%d admitted=%d shed=%d (%.1f%%) completed=%d cancelled=%d \
              timed-out=%d@."
             r.Service.r_engine (Service.offered r) (Service.admitted r) (Service.shed r)
             (100.0 *. Service.shed_rate r)
             (Service.completed r) (Service.cancelled r) (Service.timed_out r);
           Fmt.pr "latency (admitted, ms): mean=%.3f p50=%.3f p99=%.3f  [slo p99 <= %.3f]@."
             (Service.mean_ms r) (Service.p50_ms r) (Service.p99_ms r) slo;
           Fmt.pr "%-7s %8s %9s %6s %10s %10s %8s %8s@." "tenant" "offered" "admitted" "shed"
             "completed" "cancelled" "p50-ms" "p99-ms";
           Array.iteri
             (fun i ts ->
               Fmt.pr "%-7d %8d %9d %6d %10d %10d %8.3f %8.3f@." i ts.Service.ts_offered
                 ts.Service.ts_admitted ts.Service.ts_shed ts.Service.ts_completed
                 ts.Service.ts_cancelled ts.Service.ts_p50_ms ts.Service.ts_p99_ms)
             r.Service.r_per_tenant;
           Ok ()
       end)
  in
  let query_arg =
    let doc = "Gremlin query every tenant issues (default: a 2-hop neighborhood count)." in
    Arg.(
      value
      & opt string "g.V().has('id', 1).out().out().count()"
      & info [ "q"; "query" ] ~docv:"QUERY" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run an open-loop multi-tenant query service: weighted-fair scheduling, admission \
          control with load shedding, scoped cancellation")
    Term.(
      const run $ dataset_arg $ query_arg $ engine_arg $ nodes_arg $ workers_arg $ rate_arg
      $ duration_arg $ slo_arg $ tenants_arg $ no_admission_arg $ patience_arg $ seed_arg
      $ check_arg $ fanout_arg)

let () =
  let info =
    Cmd.info "graphdance" ~version:"1.0.0"
      ~doc:"Distributed asynchronous graph queries on partitioned stateful traversal machines"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            datasets_cmd; query_cmd; explain_cmd; trace_cmd; why_cmd; chaos_cmd; mc_cmd;
            repartition_cmd; ldbc_cmd; serve_cmd; verify_cmd;
          ]))
