(* graphdance — command-line front end.

   Subcommands:
     datasets                 list the built-in datasets and their sizes
     query    -d DS -q "..."  run a Gremlin query on a dataset
     explain  -d DS -q "..."  show the optimized plan without running it
     trace    -d DS -q "..."  run with tracing: operator stats + Chrome trace
     ldbc     -d snb-s        run one pass of the LDBC IC/IS queries
     verify   -d DS [-q ...]  static-verify one query, or the LDBC suite

   Queries run on the simulated cluster; reported latency is simulated
   time on the modeled hardware (see DESIGN.md). *)

open Cmdliner
open Pstm_engine
open Pstm_query

let dataset_presets =
  [
    ("tiny", `Rmat Pstm_gen.Datasets.tiny);
    ("lj-like", `Rmat Pstm_gen.Datasets.lj_like);
    ("fs-like", `Rmat Pstm_gen.Datasets.fs_like);
    ("snb-tiny", `Snb Pstm_ldbc.Snb_gen.snb_tiny);
    ("snb-s", `Snb Pstm_ldbc.Snb_gen.snb_s);
    ("snb-l", `Snb Pstm_ldbc.Snb_gen.snb_l);
  ]

let load_graph name =
  match List.assoc_opt name dataset_presets with
  | Some (`Rmat preset) -> Ok (Pstm_gen.Datasets.load preset)
  | Some (`Snb scale) -> Ok (Pstm_ldbc.Snb_gen.load scale).Pstm_ldbc.Snb_gen.graph
  | None ->
    Error
      (Fmt.str "unknown dataset %S (available: %s)" name
         (String.concat ", " (List.map fst dataset_presets)))

(* --- Arguments --- *)

let dataset_arg =
  let doc = "Dataset to run against (tiny, lj-like, fs-like, snb-tiny, snb-s, snb-l)." in
  Arg.(value & opt string "snb-tiny" & info [ "d"; "dataset" ] ~docv:"DATASET" ~doc)

let query_arg =
  let doc = "Gremlin query text, e.g. \"g.V().has('id', 3).out('knows').count()\"." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)

let engine_arg =
  let doc = "Execution engine: async (GraphDance), bsp, or local (reference)." in
  Arg.(value & opt (enum [ ("async", `Async); ("bsp", `Bsp); ("local", `Local) ]) `Async
       & info [ "e"; "engine" ] ~doc)

let nodes_arg =
  let doc = "Simulated cluster nodes." in
  Arg.(value & opt int 8 & info [ "nodes" ] ~doc)

let workers_arg =
  let doc = "Worker threads per node (one graph partition each)." in
  Arg.(value & opt int 16 & info [ "workers" ] ~doc)

(* --- Commands --- *)

let datasets_cmd =
  let run () =
    Fmt.pr "%-10s %12s %12s %10s  %s@." "name" "vertices" "edges" "size" "stands in for";
    List.iter
      (fun (name, kind) ->
        let paper, graph =
          match kind with
          | `Rmat preset ->
            (preset.Pstm_gen.Datasets.paper_name, Pstm_gen.Datasets.load preset)
          | `Snb scale ->
            ( scale.Pstm_ldbc.Snb_gen.paper_name,
              (Pstm_ldbc.Snb_gen.load scale).Pstm_ldbc.Snb_gen.graph )
        in
        Fmt.pr "%-10s %12d %12d %8.1fMB  %s@." name (Graph.n_vertices graph)
          (Graph.n_edges graph)
          (float_of_int (Graph.bytes graph) /. 1e6)
          paper)
      dataset_presets
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List built-in datasets")
    Term.(const (fun () -> run (); 0) $ const ())

let compile_query graph text =
  match Parser.parse text with
  | Error message -> Error ("parse error: " ^ message)
  | Ok ast -> begin
    match Compile.compile ~name:"cli" graph ast with
    | program -> Ok program
    | exception Compile.Error message -> Error ("compile error: " ^ message)
  end

let run_query dataset text engine nodes workers =
  let ( let* ) = Result.bind in
  let* graph = load_graph dataset in
  let* program = compile_query graph text in
  let config = { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers } in
  let rows, latency =
    match engine with
    | `Local -> (Local_engine.run graph program, None)
    | `Async ->
      let report =
        Async_engine.run ~cluster_config:config ~channel_config:Channel.default_config ~graph
          [| Engine.submit program |]
      in
      (report.Engine.queries.(0).Engine.rows, Engine.latency report.Engine.queries.(0))
    | `Bsp ->
      let report = Bsp_engine.run ~cluster_config:config ~graph [| Engine.submit program |] in
      (report.Engine.queries.(0).Engine.rows, Engine.latency report.Engine.queries.(0))
  in
  List.iter (fun row -> Fmt.pr "%a@." (Fmt.array ~sep:(Fmt.any " | ") Value.pp) row) rows;
  Fmt.pr "-- %d row(s)%a@." (List.length rows)
    (fun ppf -> function
      | None -> ()
      | Some l -> Fmt.pf ppf "; simulated latency %a" Sim_time.pp l)
    latency;
  Ok ()

let to_exit = function
  | Ok () -> 0
  | Error message ->
    Fmt.epr "graphdance: %s@." message;
    1

let query_cmd =
  let run dataset text engine nodes workers =
    to_exit (run_query dataset text engine nodes workers)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a Gremlin query on a simulated cluster")
    Term.(const run $ dataset_arg $ query_arg $ engine_arg $ nodes_arg $ workers_arg)

let explain_cmd =
  let run dataset text =
    to_exit
      (let ( let* ) = Result.bind in
       let* graph = load_graph dataset in
       let* program = compile_query graph text in
       Fmt.pr "%a@." Program.pp program;
       Ok ())
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the optimized PSTM plan for a query")
    Term.(const run $ dataset_arg $ query_arg)

let verify_cmd =
  let opt_query_arg =
    let doc = "Gremlin query to verify; without it the whole LDBC IC/IS suite is checked." in
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc)
  in
  let report name program =
    let diags = Pstm_analysis.Verify.check_program program in
    List.iter (fun d -> Fmt.pr "%s: %a@." name Pstm_analysis.Diagnostic.pp d) diags;
    let ok = Pstm_analysis.Verify.is_clean diags in
    if ok then
      Fmt.pr "%-5s ok (%d steps, %d phases)@." name (Program.n_steps program)
        (Program.n_phases program);
    ok
  in
  let run dataset text =
    to_exit
      (let ( let* ) = Result.bind in
       match text with
       | Some text ->
         let* graph = load_graph dataset in
         (* Compile.finish already gates on the verifier, so reaching the
            report below means the program is clean; a rejected program
            surfaces as the compile/verification error text. *)
         let* program =
           match compile_query graph text with
           | Ok _ as ok -> ok
           | Error _ as e -> e
           | exception Program.Invalid message -> Error ("verification error: " ^ message)
         in
         if report "query" program then Ok () else Error "verification failed"
       | None -> begin
         match List.assoc_opt dataset dataset_presets with
         | Some (`Snb scale) ->
           let data = Pstm_ldbc.Snb_gen.load scale in
           let prng = Prng.create 7 in
           let failures = ref 0 in
           List.iter
             (fun (name, make) ->
               match make data prng with
               | program -> if not (report name program) then incr failures
               | exception Program.Invalid message ->
                 incr failures;
                 Fmt.pr "%-5s REJECTED: %s@." name message)
             (Pstm_ldbc.Ic_queries.all @ Pstm_ldbc.Is_queries.all);
           if !failures = 0 then Ok ()
           else Error (Fmt.str "%d program(s) failed verification" !failures)
         | _ -> Error "verify without -q requires an SNB dataset (snb-tiny, snb-s, snb-l)"
       end)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Statically verify compiled programs (weight flow, memo lifetime, registers)")
    Term.(const run $ dataset_arg $ opt_query_arg)

let trace_cmd =
  let trace_out_arg =
    let doc = "Write the Chrome trace-event JSON (open in chrome://tracing or Perfetto) here." in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let trace_engine_arg =
    let doc = "Execution engine to trace: async (GraphDance) or bsp." in
    Arg.(value & opt (enum [ ("async", `Async); ("bsp", `Bsp) ]) `Async
         & info [ "e"; "engine" ] ~doc)
  in
  let run dataset text engine nodes workers trace_out =
    to_exit
      (let ( let* ) = Result.bind in
       let* graph = load_graph dataset in
       let* program = compile_query graph text in
       let config =
         { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
       in
       let obs = Pstm_obs.Recorder.create () in
       let report =
         match engine with
         | `Async ->
           Async_engine.run ~obs ~cluster_config:config ~channel_config:Channel.default_config
             ~graph
             [| Engine.submit program |]
         | `Bsp -> Bsp_engine.run ~obs ~cluster_config:config ~graph [| Engine.submit program |]
       in
       let q = report.Engine.queries.(0) in
       let step_label i = Step.op_summary (Program.step program i).Step.op in
       Fmt.pr "%a@." (Pstm_obs.Opstats.pp_table ~step_label) (Pstm_obs.Recorder.opstats obs);
       Fmt.pr "%a@." Engine.pp_query q;
       let trace = Pstm_obs.Recorder.trace obs in
       Fmt.pr "trace: %d event(s) recorded, %d dropped@." (Pstm_obs.Trace.length trace)
         (Pstm_obs.Trace.dropped trace);
       (match trace_out with
       | None -> ()
       | Some path ->
         Pstm_obs.Json.write_file path (Pstm_obs.Trace.to_chrome_json trace);
         Fmt.pr "trace written to %s@." path);
       Ok ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a query with tracing: operator stats table plus a Chrome trace-event file")
    Term.(
      const run $ dataset_arg $ query_arg $ trace_engine_arg $ nodes_arg $ workers_arg
      $ trace_out_arg)

let ldbc_cmd =
  let per_query_arg =
    let doc = "Run each query several times with fresh parameters and print per-query mean/p99." in
    Arg.(value & flag & info [ "per-query" ] ~doc)
  in
  let repeats_arg =
    let doc = "Runs per query under --per-query." in
    Arg.(value & opt int 5 & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let run dataset nodes workers per_query repeats =
    to_exit
      (match List.assoc_opt dataset dataset_presets with
      | Some (`Snb scale) ->
        let data = Pstm_ldbc.Snb_gen.load scale in
        let config =
          { Cluster.default_config with Cluster.n_nodes = nodes; workers_per_node = workers }
        in
        let prng = Prng.create 7 in
        let run_once program =
          Async_engine.run ~cluster_config:config ~channel_config:Channel.default_config
            ~graph:data.Pstm_ldbc.Snb_gen.graph
            [| Engine.submit program |]
        in
        if per_query then begin
          if repeats < 1 then invalid_arg "--repeats must be at least 1";
          Fmt.pr "%-5s %8s %10s %10s %10s@." "query" "runs" "mean-ms" "p99-ms" "rows";
          List.iter
            (fun (name, make) ->
              let rows = ref 0 in
              let latencies =
                Array.init repeats (fun _ ->
                    let report = run_once (make data prng) in
                    let q = report.Engine.queries.(0) in
                    rows := !rows + List.length q.Engine.rows;
                    Engine.latency_ms q)
              in
              Fmt.pr "%-5s %8d %10.3f %10.3f %10.1f@." name repeats (Stats.mean latencies)
                (Stats.percentile latencies 99.0)
                (float_of_int !rows /. float_of_int repeats))
            (Pstm_ldbc.Ic_queries.all @ Pstm_ldbc.Is_queries.all)
        end
        else
          List.iter
            (fun (name, make) ->
              let report = run_once (make data prng) in
              Fmt.pr "%-5s %a@." name Engine.pp_query report.Engine.queries.(0))
            (Pstm_ldbc.Ic_queries.all @ Pstm_ldbc.Is_queries.all);
        Ok ()
      | _ -> Error "ldbc requires an SNB dataset (snb-tiny, snb-s, snb-l)")
  in
  Cmd.v
    (Cmd.info "ldbc" ~doc:"Run one pass of the LDBC IC and IS queries")
    Term.(const run $ dataset_arg $ nodes_arg $ workers_arg $ per_query_arg $ repeats_arg)

let () =
  let info =
    Cmd.info "graphdance" ~version:"1.0.0"
      ~doc:"Distributed asynchronous graph queries on partitioned stateful traversal machines"
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ datasets_cmd; query_cmd; explain_cmd; trace_cmd; ldbc_cmd; verify_cmd ]))
